package inspect

import (
	"strings"
	"testing"

	"uopsim/internal/policy"
	"uopsim/internal/telemetry"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

func pw(start uint64, uops int) trace.PW {
	return trace.PW{Start: start, NumUops: uint16(uops), Bytes: uint16(uops * 4), NumInst: uint16(uops)}
}

// seq builds a PW sequence from window start addresses (8 uops each).
func seq(starts ...uint64) []trace.PW {
	out := make([]trace.PW, len(starts))
	for i, s := range starts {
		out[i] = pw(s, 8)
	}
	return out
}

func TestAttributeClassification(t *testing.T) {
	// Trace positions:  0    1    2    3    4    5
	pws := seq(0x10, 0x20, 0x30, 0x10, 0x40, 0x50)
	cases := []struct {
		name  string
		rec   EvictionRecord
		opts  Options
		class string
	}{
		// 0x20 is never referenced at or after position 2 -> justified.
		{"never-rereferenced", EvictionRecord{Seq: 2, VictimKey: 0x20}, Options{Window: 4}, ClassJustified},
		// 0x10 evicted at Seq 2, next use at position 3, distance 1 < 4 -> premature.
		{"rereferenced-in-window", EvictionRecord{Seq: 2, VictimKey: 0x10}, Options{Window: 4}, ClassPremature},
		// Same eviction with window 1: distance 1 >= 1 -> justified.
		{"rereferenced-past-window", EvictionRecord{Seq: 2, VictimKey: 0x10}, Options{Window: 1}, ClassJustified},
		// Keep-plan kept the victim's current interval (last use before
		// Seq 2 is position 0) -> divergent, taking precedence over the
		// premature re-reference at position 3.
		{"keep-plan-divergent", EvictionRecord{Seq: 2, VictimKey: 0x10},
			Options{Window: 4, Keep: []bool{true, false, false, false, false, false}}, ClassDivergent},
		// Keep-plan did NOT keep the interval -> falls through to premature.
		{"keep-plan-agrees", EvictionRecord{Seq: 2, VictimKey: 0x10},
			Options{Window: 4, Keep: []bool{false, false, false, false, false, false}}, ClassPremature},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := Attribute([]EvictionRecord{tc.rec}, pws, tc.opts)
			if a.Total != 1 {
				t.Fatalf("Total = %d, want 1", a.Total)
			}
			got := map[string]uint64{
				ClassJustified: a.Justified,
				ClassPremature: a.Premature,
				ClassDivergent: a.Divergent,
			}
			for class, n := range got {
				want := uint64(0)
				if class == tc.class {
					want = 1
				}
				if n != want {
					t.Errorf("%s = %d, want %d (full: %+v)", class, n, want, got)
				}
			}
		})
	}
}

func TestAttributePartitionIsExact(t *testing.T) {
	pws := seq(0x10, 0x20, 0x30, 0x10, 0x20, 0x10, 0x40)
	recs := []EvictionRecord{
		{Seq: 1, VictimKey: 0x10, Reason: "lru_oldest"},
		{Seq: 2, VictimKey: 0x20, Reason: "lru_oldest"},
		{Seq: 3, VictimKey: 0x30, Reason: "random_draw"},
		{Seq: 5, VictimKey: 0x20, Reason: "rrpv_distant"},
		{Seq: 6, VictimKey: 0x99, Reason: "forced"}, // key not in trace at all
	}
	keep := make([]bool, len(pws))
	keep[1] = true // makes the Seq 5 eviction of 0x20 divergent
	a := Attribute(recs, pws, Options{Window: 2, Keep: keep})
	if a.Total != uint64(len(recs)) {
		t.Fatalf("Total = %d, want %d", a.Total, len(recs))
	}
	if a.Justified+a.Premature+a.Divergent != a.Total {
		t.Fatalf("partition not exact: %d + %d + %d != %d",
			a.Justified, a.Premature, a.Divergent, a.Total)
	}
	if a.Divergent != 1 {
		t.Errorf("Divergent = %d, want 1", a.Divergent)
	}
	var reasons uint64
	for _, n := range a.Reasons {
		reasons += n
	}
	if reasons != a.Total {
		t.Errorf("reason tallies sum to %d, want %d", reasons, a.Total)
	}
}

func TestAttributeReuseDistBuckets(t *testing.T) {
	// Distance 1 -> bucket 1; distance 2 -> bucket 2; no re-reference ->
	// no histogram observation.
	pws := seq(0xA, 0xB, 0xA, 0xC, 0xB, 0xD)
	recs := []EvictionRecord{
		{Seq: 1, VictimKey: 0xA}, // next use at 2, distance 1
		{Seq: 2, VictimKey: 0xB}, // next use at 4, distance 2
		{Seq: 6, VictimKey: 0xD}, // never again (0xD's only use is before Seq)
	}
	a := Attribute(recs, pws, Options{Window: 100})
	if a.ReuseDist[1] != 1 || a.ReuseDist[2] != 1 {
		t.Errorf("buckets = %v, want one each in buckets 1 and 2", a.ReuseDist[:4])
	}
	var observed uint64
	for _, n := range a.ReuseDist {
		observed += n
	}
	if observed != 2 {
		t.Errorf("observed %d reuse distances, want 2", observed)
	}
}

// fakeSink counts forwarded events.
type fakeSink struct{ n int }

func (f *fakeSink) Emit(telemetry.Event) { f.n++ }

func TestCollectorCapturesEvictsAndTees(t *testing.T) {
	next := &fakeSink{}
	c := NewCollector()
	c.Next = next
	c.Emit(telemetry.Event{Kind: telemetry.EventHit, Seq: 1})
	c.Emit(telemetry.Event{Kind: telemetry.EventEvict, Seq: 2, VictimKey: 0x10,
		IncomingKey: 0x20, Reason: "lru_oldest", Score: 7, Policy: "lru"})
	c.Emit(telemetry.Event{Kind: telemetry.EventInsert, Seq: 3})
	if next.n != 3 {
		t.Errorf("next sink saw %d events, want all 3", next.n)
	}
	recs := c.Records()
	if len(recs) != 1 || c.Len() != 1 {
		t.Fatalf("captured %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.VictimKey != 0x10 || r.IncomingKey != 0x20 || r.Reason != "lru_oldest" ||
		r.Score != 7 || r.Policy != "lru" || r.Seq != 2 {
		t.Errorf("record fields lost: %+v", r)
	}
}

// TestReconciliationWithLiveCache drives a real cache and checks the three
// eviction counts agree: Stats.Evictions, uopcache_evictions_total, and the
// attribution total.
func TestReconciliationWithLiveCache(t *testing.T) {
	cfg := uopcache.Config{Entries: 4, Ways: 2, UopsPerEntry: 8, InsertDelay: 0}
	// Cycle enough distinct windows through 2 sets x 2 ways to force
	// evictions, with re-references so every class can appear.
	var pws []trace.PW
	for round := 0; round < 8; round++ {
		for k := uint64(0); k < 6; k++ {
			pws = append(pws, pw(0x100*(k+1), 8))
		}
	}
	reg := telemetry.NewRegistry()
	col := NewCollector()
	c := uopcache.New(cfg, policy.NewLRU())
	c.AttachMetrics(reg)
	c.SetEventSink(col)
	stats := uopcache.NewBehavior(c, nil).Run(pws)
	if stats.Evictions == 0 {
		t.Fatal("test trace produced no evictions; widen it")
	}
	counter := reg.Counter("uopcache_evictions_total").Value()
	a := Attribute(col.Records(), pws, Options{})
	if a.Total != stats.Evictions || a.Total != counter {
		t.Fatalf("attribution total %d, Stats.Evictions %d, counter %d — must all agree",
			a.Total, stats.Evictions, counter)
	}
	if a.Justified+a.Premature+a.Divergent != a.Total {
		t.Fatalf("partition not exact: %d+%d+%d != %d", a.Justified, a.Premature, a.Divergent, a.Total)
	}
	if a.Window != DefaultWindow {
		t.Errorf("Window = %d, want DefaultWindow", a.Window)
	}
	if a.Policy == "" {
		t.Error("Policy not propagated from events")
	}
	for reason := range a.Reasons {
		if reason != policy.ReasonLRUOldest && reason != uopcache.ReasonForced {
			t.Errorf("unexpected reason %q from an LRU run", reason)
		}
	}
}

func TestCSVSchema(t *testing.T) {
	rows := []Attribution{
		{App: "kafka", Policy: "lru", Window: 4096, Total: 10, Justified: 6, Premature: 3, Divergent: 1},
	}
	rows[0].ReuseDist[3] = 4
	var sb strings.Builder
	if err := WriteCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != CSVHeader {
		t.Errorf("header = %q, want %q", lines[0], CSVHeader)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if want := "kafka,lru,4096,10,6,3,1,0.6000,0.3000,0.1000"; lines[1] != want {
		t.Errorf("row = %q, want %q", lines[1], want)
	}
	sb.Reset()
	if err := WriteRDCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != RDCSVHeader {
		t.Errorf("rd header = %q, want %q", lines[0], RDCSVHeader)
	}
	if want := "kafka,lru,3,4"; len(lines) != 2 || lines[1] != want {
		t.Errorf("rd rows = %v, want one row %q", lines[1:], want)
	}
}

func TestSummaryAndTotals(t *testing.T) {
	rows := []Attribution{
		{Total: 5, Justified: 3, Premature: 1, Divergent: 1},
		{Total: 7, Justified: 2, Premature: 5},
	}
	tot, j, p, d := Totals(rows)
	if tot != 12 || j != 5 || p != 6 || d != 1 {
		t.Errorf("Totals = %d/%d/%d/%d", tot, j, p, d)
	}
	if s := Summary(rows); !strings.Contains(s, "12 evictions") {
		t.Errorf("Summary = %q", s)
	}
}

func TestFractionSVG(t *testing.T) {
	rows := []Attribution{
		{App: "kafka", Policy: "lru", Total: 10, Justified: 6, Premature: 3, Divergent: 1},
		{App: "kafka", Policy: "srrip", Total: 10, Justified: 8, Premature: 2},
	}
	svg := FractionSVG("eviction attribution", rows)
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "justified") {
		t.Errorf("FractionSVG missing expected content:\n%.200s", svg)
	}
}
