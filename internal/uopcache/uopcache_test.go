package uopcache_test

import (
	"testing"

	"uopsim/internal/cache"
	"uopsim/internal/policy"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// pw builds a test window with explicit start and micro-op count.
func pw(start uint64, uops int) trace.PW {
	return trace.PW{
		Start:   start,
		NumUops: uint16(uops),
		Bytes:   uint16(uops * 4),
		NumInst: uint16(uops),
		Lines:   []uint64{trace.LineAddr(start)},
	}
}

// tinyConfig: 2 sets x 4 ways, 8 uops/entry, synchronous insertion.
func tinyConfig() uopcache.Config {
	return uopcache.Config{Entries: 8, Ways: 4, UopsPerEntry: 8, InsertDelay: 0}
}

func newTiny() *uopcache.Cache { return uopcache.New(tinyConfig(), policy.NewLRU()) }

func TestConfigValidate(t *testing.T) {
	if err := uopcache.DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []uopcache.Config{
		{Entries: 0, Ways: 8, UopsPerEntry: 8},
		{Entries: 512, Ways: 7, UopsPerEntry: 8},
		{Entries: 96, Ways: 8, UopsPerEntry: 8}, // 12 sets, not pow2
		{Entries: 512, Ways: 8, UopsPerEntry: 8, InsertDelay: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
	if got := uopcache.DefaultConfig().Sets(); got != 64 {
		t.Errorf("default sets = %d, want 64", got)
	}
}

func TestLookupMissThenHit(t *testing.T) {
	c := newTiny()
	w := pw(0x1000, 6)
	if r := c.Lookup(w); r.Kind != uopcache.ProbeMiss || r.MissUops != 6 {
		t.Errorf("first lookup = %+v", r)
	}
	if out := c.Insert(w); out != uopcache.Inserted {
		t.Fatalf("insert = %v", out)
	}
	if r := c.Lookup(w); r.Kind != uopcache.ProbeFull || r.HitUops != 6 {
		t.Errorf("post-insert lookup = %+v", r)
	}
	st := c.Stats
	if st.Lookups != 2 || st.Misses != 1 || st.FullHits != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.UopsRequested != 12 || st.UopsHit != 6 || st.UopsMissed != 6 {
		t.Errorf("uop stats = %+v", st)
	}
}

// TestIntermediateExitPoints: a stored larger window serves a smaller lookup
// with the same start (full hit, AMD patent behaviour).
func TestIntermediateExitPoints(t *testing.T) {
	c := newTiny()
	c.Insert(pw(0x1000, 12))
	r := c.Lookup(pw(0x1000, 5))
	if r.Kind != uopcache.ProbeFull || r.HitUops != 5 || r.MissUops != 0 {
		t.Errorf("smaller lookup on larger window = %+v", r)
	}
}

// TestPartialHit: a stored smaller window partially serves a larger lookup.
func TestPartialHit(t *testing.T) {
	c := newTiny()
	c.Insert(pw(0x1000, 4))
	r := c.Lookup(pw(0x1000, 10))
	if r.Kind != uopcache.ProbePartial || r.HitUops != 4 || r.MissUops != 6 {
		t.Errorf("partial lookup = %+v", r)
	}
	if c.Stats.PartialHits != 1 {
		t.Errorf("partial hit not counted: %+v", c.Stats)
	}
}

// TestGrowReplacesSmaller: inserting a larger same-start window replaces the
// smaller and frees/claims entries correctly.
func TestGrowReplacesSmaller(t *testing.T) {
	c := newTiny()
	c.Insert(pw(0x1000, 4)) // 1 entry
	set := c.SetIndex(0x1000)
	if c.UsedEntries(set) != 1 {
		t.Fatalf("used = %d", c.UsedEntries(set))
	}
	if out := c.Insert(pw(0x1000, 20)); out != uopcache.Inserted { // 3 entries
		t.Fatalf("grow insert = %v", out)
	}
	if c.UsedEntries(set) != 3 {
		t.Errorf("used after grow = %d, want 3", c.UsedEntries(set))
	}
	r, ok := c.ResidentFor(0x1000)
	if !ok || r.Uops != 20 || r.EntriesUsed != 3 {
		t.Errorf("resident after grow = %+v, %v", r, ok)
	}
}

// TestShrinkIsRedundant: inserting a smaller same-start window is a no-op
// (the larger window is kept, per FLACK's selective-bypass insight and the
// hardware's behaviour).
func TestShrinkIsRedundant(t *testing.T) {
	c := newTiny()
	c.Insert(pw(0x1000, 20))
	if out := c.Insert(pw(0x1000, 4)); out != uopcache.Redundant {
		t.Errorf("shrink insert = %v, want Redundant", out)
	}
	r, _ := c.ResidentFor(0x1000)
	if r.Uops != 20 {
		t.Errorf("resident shrunk to %d uops", r.Uops)
	}
}

// TestEvictionWholePW: multi-entry windows are evicted as a whole.
func TestEvictionWholePW(t *testing.T) {
	c := newTiny() // 4 ways per set
	set0 := c.SetIndex(0x1000)
	// Two 2-entry windows fill the set (start addrs chosen for same set).
	a, b := pw(0x1000, 16), pw(0x1000+0x2000, 16)
	if c.SetIndex(a.Start) != c.SetIndex(b.Start) {
		t.Fatalf("test addresses map to different sets: %d vs %d", c.SetIndex(a.Start), c.SetIndex(b.Start))
	}
	c.Insert(a)
	c.Insert(b)
	if c.UsedEntries(set0) != 4 {
		t.Fatalf("set not full: %d", c.UsedEntries(set0))
	}
	// A third 1-entry window must evict one whole window (2 entries).
	d := pw(0x1000+0x4000, 4)
	if c.SetIndex(d.Start) != set0 {
		t.Fatalf("d maps elsewhere")
	}
	c.Lookup(a) // make a MRU so b is the LRU victim
	if out := c.Insert(d); out != uopcache.Inserted {
		t.Fatalf("insert d = %v", out)
	}
	if _, ok := c.ResidentFor(b.Start); ok {
		t.Error("b should have been evicted whole")
	}
	if _, ok := c.ResidentFor(a.Start); !ok {
		t.Error("a should survive")
	}
	if c.UsedEntries(set0) != 3 {
		t.Errorf("used = %d, want 3 (2 for a + 1 for d)", c.UsedEntries(set0))
	}
	if c.Stats.Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats.Evictions)
	}
}

func TestTooLarge(t *testing.T) {
	c := newTiny() // 4 ways -> max 32 uops per set
	if out := c.Insert(pw(0x1000, 40)); out != uopcache.TooLarge {
		t.Errorf("oversized insert = %v, want TooLarge", out)
	}
}

func TestInvalidateLine(t *testing.T) {
	c := newTiny()
	// Two windows in the same icache line, plus one in another line.
	c.Insert(pw(0x1000, 4))
	c.Insert(pw(0x1010, 4))
	c.Insert(pw(0x2000, 4))
	if n := c.InvalidateLine(0x1000); n != 2 {
		t.Errorf("invalidated %d windows, want 2", n)
	}
	if _, ok := c.ResidentFor(0x1000); ok {
		t.Error("0x1000 still resident")
	}
	if _, ok := c.ResidentFor(0x1010); ok {
		t.Error("0x1010 still resident")
	}
	if _, ok := c.ResidentFor(0x2000); !ok {
		t.Error("0x2000 should survive")
	}
	if c.Stats.Invalidations != 2 {
		t.Errorf("invalidation count = %d", c.Stats.Invalidations)
	}
	if n := c.InvalidateLine(0x9000); n != 0 {
		t.Errorf("invalidate of absent line = %d", n)
	}
}

// TestCapacityNeverExceeded is the core structural invariant: entries used
// per set never exceed the way count, under heavy mixed-size traffic.
func TestCapacityNeverExceeded(t *testing.T) {
	cfg := uopcache.Config{Entries: 32, Ways: 8, UopsPerEntry: 8, InsertDelay: 0}
	c := uopcache.New(cfg, policy.NewLRU())
	state := uint64(12345)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	for i := 0; i < 20000; i++ {
		start := uint64(0x1000 + next(600)*16)
		uops := 1 + next(32)
		w := pw(start, uops)
		c.Lookup(w)
		c.Insert(w)
		for s := 0; s < cfg.Sets(); s++ {
			if u := c.UsedEntries(s); u > cfg.Ways {
				t.Fatalf("set %d uses %d entries > %d ways (iter %d)", s, u, cfg.Ways, i)
			}
		}
	}
	if c.TotalUsedEntries() > cfg.Entries {
		t.Errorf("total used %d > %d", c.TotalUsedEntries(), cfg.Entries)
	}
}

func TestProbeDoesNotMutate(t *testing.T) {
	c := newTiny()
	c.Insert(pw(0x1000, 4))
	before := c.Stats
	r := c.Probe(pw(0x1000, 4))
	if r.Kind != uopcache.ProbeFull {
		t.Errorf("probe = %+v", r)
	}
	if c.Stats != before {
		t.Error("Probe mutated statistics")
	}
	if r := c.Probe(pw(0x5000, 4)); r.Kind != uopcache.ProbeMiss {
		t.Errorf("probe absent = %+v", r)
	}
	c.Insert(pw(0x3000, 4))
	if r := c.Probe(pw(0x3000, 9)); r.Kind != uopcache.ProbePartial || r.HitUops != 4 {
		t.Errorf("probe partial = %+v", r)
	}
}

// --- Behaviour-mode (asynchrony) tests ---

func TestBehaviorInsertDelay(t *testing.T) {
	cfg := tinyConfig()
	cfg.InsertDelay = 3
	c := uopcache.New(cfg, policy.NewLRU())
	b := uopcache.NewBehavior(c, nil)
	w := pw(0x1000, 4)
	other := pw(0x7000, 4)
	b.Access(w) // miss, schedules insertion due at lookup 4
	if !b.InFlight(w.Start) {
		t.Fatal("insertion not in flight")
	}
	// Lookups 2 and 3: w is still absent (asynchrony) — these miss.
	if r := b.Access(w); r.Kind != uopcache.ProbeMiss {
		t.Errorf("lookup 2 = %+v, want miss (still in decode pipe)", r)
	}
	if r := b.Access(other); r.Kind != uopcache.ProbeMiss {
		t.Errorf("lookup 3 = %+v", r)
	}
	// Lookup 4: the insertion drains before the probe — now a hit.
	if r := b.Access(w); r.Kind != uopcache.ProbeFull {
		t.Errorf("lookup 4 = %+v, want full hit after drain", r)
	}
	if b.InFlight(w.Start) {
		t.Error("still in flight after drain")
	}
}

// TestBehaviorCoalescing: repeated misses on an in-flight window must not
// duplicate insertions, and a larger re-request grows the pending window.
func TestBehaviorCoalescing(t *testing.T) {
	cfg := tinyConfig()
	cfg.InsertDelay = 5
	c := uopcache.New(cfg, policy.NewLRU())
	b := uopcache.NewBehavior(c, nil)
	b.Access(pw(0x1000, 4))
	b.Access(pw(0x1000, 12)) // larger overlapping window while in flight
	b.Access(pw(0x1000, 6))
	b.Flush()
	if c.Stats.Insertions != 1 {
		t.Errorf("insertions = %d, want 1 (coalesced)", c.Stats.Insertions)
	}
	r, ok := c.ResidentFor(0x1000)
	if !ok || r.Uops != 12 {
		t.Errorf("resident = %+v, %v; want grown to 12 uops", r, ok)
	}
}

func TestBehaviorCancelInFlight(t *testing.T) {
	cfg := tinyConfig()
	cfg.InsertDelay = 4
	c := uopcache.New(cfg, policy.NewLRU())
	b := uopcache.NewBehavior(c, nil)
	b.Access(pw(0x1000, 4))
	if !b.CancelInFlight(0x1000) {
		t.Fatal("cancel failed")
	}
	if b.CancelInFlight(0x1000) {
		t.Error("double cancel should fail")
	}
	b.Flush()
	if _, ok := c.ResidentFor(0x1000); ok {
		t.Error("cancelled window was inserted")
	}
	if c.Stats.Bypasses != 1 {
		t.Errorf("bypasses = %d, want 1", c.Stats.Bypasses)
	}
	if b.CancelInFlight(0x9999) {
		t.Error("cancel of unknown window should fail")
	}
}

// TestBehaviorInclusion: evicting an L1i line must invalidate the
// corresponding micro-op cache windows (the inclusive design).
func TestBehaviorInclusion(t *testing.T) {
	cfg := tinyConfig()
	cfg.InsertDelay = 0
	c := uopcache.New(cfg, policy.NewLRU())
	// Tiny direct-mapped icache: 2 lines of 64B.
	ic := cache.New(cache.Config{SizeBytes: 128, LineBytes: 64, Ways: 1})
	b := uopcache.NewBehavior(c, ic)
	w := pw(0x0000, 4) // line 0x0000, icache set 0
	b.Access(w)
	b.Access(w) // inserted by now; hit
	if _, ok := c.ResidentFor(w.Start); !ok {
		t.Fatal("window not resident")
	}
	// Touch a conflicting icache line (same set 0): 0x0080.
	b.Access(pw(0x0080, 4))
	if _, ok := c.ResidentFor(w.Start); ok {
		t.Error("window survived L1i eviction of its line (inclusion violated)")
	}
	if c.Stats.Invalidations == 0 {
		t.Error("no invalidations counted")
	}
}

func TestBehaviorRun(t *testing.T) {
	cfg := tinyConfig()
	cfg.InsertDelay = 1
	c := uopcache.New(cfg, policy.NewLRU())
	b := uopcache.NewBehavior(c, nil)
	var seq []trace.PW
	for i := 0; i < 100; i++ {
		seq = append(seq, pw(0x1000, 4), pw(0x2000, 6))
	}
	st := b.Run(seq)
	if st.Lookups != 200 {
		t.Errorf("lookups = %d", st.Lookups)
	}
	if st.UopMissRate() >= 0.5 {
		t.Errorf("loopy trace should mostly hit, miss rate %.2f", st.UopMissRate())
	}
	if b.Lookups() != 200 {
		t.Errorf("Lookups() = %d", b.Lookups())
	}
}

func TestStatsUopMissRateEmpty(t *testing.T) {
	var s uopcache.Stats
	if s.UopMissRate() != 0 {
		t.Error("empty stats miss rate should be 0")
	}
}
