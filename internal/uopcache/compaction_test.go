package uopcache_test

import (
	"testing"

	"uopsim/internal/policy"
	"uopsim/internal/uopcache"
)

func TestCompactionPacksSmallWindows(t *testing.T) {
	// 4 ways x 8 uops/entry. Without compaction, four 1-uop windows fill
	// the set (1 entry each); with compaction, dozens fit.
	base := uopcache.Config{Entries: 8, Ways: 4, UopsPerEntry: 8, InsertDelay: 0}
	comp := base
	comp.Compaction = true

	fill := func(cfg uopcache.Config) int {
		c := uopcache.New(cfg, policy.NewLRU())
		resident := 0
		for i := 0; i < 64; i++ {
			w := pw(uint64(0x1000+i*16), 1)
			if c.SetIndex(w.Start) != c.SetIndex(0x1000) {
				continue
			}
			if c.Insert(w) == uopcache.Inserted {
				resident++
			}
		}
		set := c.SetIndex(0x1000)
		return len(c.Residents(set))
	}
	if nBase, nComp := fill(base), fill(comp); nComp <= nBase {
		t.Errorf("compaction holds %d windows vs %d without — expected more", nComp, nBase)
	}
}

func TestCompactionCapacityNeverExceeded(t *testing.T) {
	cfg := uopcache.Config{Entries: 16, Ways: 8, UopsPerEntry: 8, InsertDelay: 0, Compaction: true}
	c := uopcache.New(cfg, policy.NewLRU())
	state := uint64(31)
	for i := 0; i < 10000; i++ {
		state = state*6364136223846793005 + 1
		w := pw(uint64(0x1000+(state>>33)%400*16), 1+int((state>>17)%24))
		c.Lookup(w)
		c.Insert(w)
		for s := 0; s < cfg.Sets(); s++ {
			// Under compaction, capacity is uops per set.
			tot := 0
			for _, r := range c.Residents(s) {
				tot += r.Uops
			}
			if tot > cfg.Ways*cfg.UopsPerEntry {
				t.Fatalf("set %d holds %d uops > %d", s, tot, cfg.Ways*cfg.UopsPerEntry)
			}
		}
	}
	if u := c.Utilization(); u < 0.99 || u > 1.01 {
		t.Errorf("idealized compaction utilization = %v, want 1", u)
	}
}

func TestCompactionReducesMisses(t *testing.T) {
	// Small windows + capacity pressure: compaction's packing must not
	// increase the miss rate.
	mkTrace := func() []uint64 {
		var out []uint64
		state := uint64(7)
		for i := 0; i < 20000; i++ {
			state = state*6364136223846793005 + 1
			out = append(out, uint64(0x1000+(state>>33)%200*16))
		}
		return out
	}
	run := func(compaction bool) float64 {
		cfg := uopcache.Config{Entries: 64, Ways: 8, UopsPerEntry: 8, InsertDelay: 0, Compaction: compaction}
		c := uopcache.New(cfg, policy.NewLRU())
		b := uopcache.NewBehavior(c, nil)
		for _, a := range mkTrace() {
			b.Access(pw(a, 3)) // small windows: heavy fragmentation
		}
		b.Flush()
		return c.Stats.UopMissRate()
	}
	base, comp := run(false), run(true)
	if comp > base {
		t.Errorf("compaction raised miss rate: %.4f vs %.4f", comp, base)
	}
}
