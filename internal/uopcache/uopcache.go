// Package uopcache models the micro-op cache: a set-associative structure
// whose storage unit is a fixed-size entry (8 micro-ops by default) but whose
// lookup/insertion/eviction unit is the prediction window (PW), which may
// span multiple entries in the same set. It implements the three properties
// the paper identifies as essential and absent from conventional caches:
//
//   - disproportionate miss costs: a PW's size (entries) and cost (micro-ops)
//     are independent; misses are accounted in micro-ops;
//   - partial hits: a stored window serves any lookup with the same start
//     address and fewer micro-ops (intermediate exit points); a lookup for
//     MORE micro-ops than stored is served partially, with the remainder
//     decoded and the merged larger window re-inserted;
//   - asynchronous lookup and insertion: insertions complete a configurable
//     number of lookups after the triggering miss, with in-flight windows
//     coalescing subsequent misses.
//
// Replacement is delegated to a Policy; every policy the paper evaluates
// (online and offline) implements that interface.
//
// Storage layout: residents live in a dense per-set slot array (a slot is a
// (set, way) position, like hardware ways), found by a small per-set
// linear-probe index instead of a Go map. The slot number is a stable handle
// for the resident's whole lifetime — policies receive it on every event and
// keep their metadata in flat per-slot arrays, which is both faster than
// map[key] lookups and faithful to how hardware stores RRPV/recency bits.
package uopcache

import (
	"fmt"
	"math/bits"
	"slices"

	"uopsim/internal/telemetry"
	"uopsim/internal/trace"
)

// Config sizes the micro-op cache. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// Entries is the total number of fixed-size entries (paper: 512).
	Entries int
	// Ways is the number of entries per set (paper: 8).
	Ways int
	// UopsPerEntry is the micro-op capacity of one entry (paper: 8).
	UopsPerEntry int
	// InsertDelay is the number of subsequent lookups after which a
	// triggered insertion completes, modelling the decode-pipeline
	// latency relative to the lookup rate (behaviour mode).
	InsertDelay int
	// Compaction enables idealized entry compaction (the upper bound of
	// the CLASP/compaction techniques of Kotra & Kalamatianos, MICRO
	// 2020): windows share entries perfectly, so a set's capacity is
	// accounted in micro-ops (Ways x UopsPerEntry) rather than whole
	// entries, eliminating internal fragmentation.
	Compaction bool
}

// DefaultConfig returns the paper's Zen3-like configuration: 512 entries,
// 8-way, 8 micro-ops per entry, with a 3-lookup insertion delay.
func DefaultConfig() Config {
	return Config{Entries: 512, Ways: 8, UopsPerEntry: 8, InsertDelay: 3}
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Entries / c.Ways }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Ways <= 0 || c.UopsPerEntry <= 0 {
		return fmt.Errorf("uopcache: non-positive geometry %+v", c)
	}
	if c.Entries%c.Ways != 0 {
		return fmt.Errorf("uopcache: %d entries not divisible by %d ways", c.Entries, c.Ways)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("uopcache: set count %d not a power of two", s)
	}
	if c.InsertDelay < 0 {
		return fmt.Errorf("uopcache: negative insert delay")
	}
	return nil
}

// Resident describes a PW currently stored in the cache.
type Resident struct {
	// Key is the window's start address.
	Key uint64
	// Uops is the stored micro-op count (the cost).
	Uops int
	// EntriesUsed is the number of entry slots occupied (the size).
	EntriesUsed int
	// Lines are the icache lines the window's code lives in (one line
	// normally; two when CLASP-style cross-line windows are enabled in
	// the former), used for inclusive invalidation.
	Lines []uint64
	// InsertedAt is the lookup sequence number of the insertion.
	InsertedAt uint64
	// LastHitAt is the lookup sequence number of the last hit.
	LastHitAt uint64
	// Slot is the resident's stable slot handle within its set: assigned
	// at insertion, fixed until eviction, passed to every Policy event so
	// policies can index flat per-slot metadata arrays.
	Slot int32
}

// Decision is a replacement policy's answer when space is needed.
type Decision struct {
	// Bypass requests that the incoming window not be inserted.
	Bypass bool
	// VictimKey names the resident PW to evict when not bypassing.
	VictimKey uint64
	// Reason states the grounds for the choice using a small, constant
	// per-policy vocabulary (e.g. ReasonLRUOldest). Constant strings keep
	// the hot path allocation-free; empty means "not stated".
	Reason string
	// Score is the ranking value the victim lost with (stamp, RRPV, ETR,
	// weight, ...). Units are policy-specific.
	Score float64
}

// Decision reason vocabulary shared across policies. Policies with richer
// internal state define additional constants next to their implementation;
// all are plain constant strings so stamping a Decision never allocates.
const (
	// ReasonForced marks eager evictions commanded by an offline plan or
	// an external invalidation, not chosen by the online policy.
	ReasonForced = "forced"
)

// Geometry is the dense slot layout a Policy binds its metadata to: the
// cache has Sets x SlotsPerSet slots, and every resident's (set, slot) pair
// is stable for its lifetime. SlotsPerSet equals Ways normally and
// Ways x UopsPerEntry under compaction (one slot per micro-op of capacity,
// the maximum number of co-resident windows).
type Geometry struct {
	Sets        int
	SlotsPerSet int
}

// Slots returns the total slot count; policies size per-slot arrays with it.
func (g Geometry) Slots() int { return g.Sets * g.SlotsPerSet }

// Policy selects victims and observes cache events. Implementations keep
// per-resident metadata in flat arrays indexed by the (set, slot) handle the
// cache passes with every event: Bind is called once before any other event
// with the cache geometry, and a resident's slot is stable from its OnInsert
// to its OnEvict (slots are reused after eviction, always through a fresh
// OnInsert).
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Bind sizes per-slot metadata; called once by New before any event.
	Bind(g Geometry)
	// OnHit fires when a lookup hits resident window key in set.
	OnHit(set int, slot int32, key uint64)
	// OnInsert fires after window pw was inserted into set at slot.
	OnInsert(set int, slot int32, pw trace.PW)
	// OnEvict fires when window key leaves set (eviction, invalidation,
	// or replacement by a larger same-start window); slot is released.
	OnEvict(set int, slot int32, key uint64)
	// Victim chooses the next eviction victim among residents, or
	// requests a bypass of the incoming window. It is called repeatedly
	// until enough entries are free. residents is non-empty, in slot
	// (way) order, and each element carries its Slot handle.
	Victim(set int, residents []Resident, incoming trace.PW) Decision
}

// ProbeKind classifies a lookup outcome.
type ProbeKind uint8

const (
	// ProbeMiss: no window with this start address is resident.
	ProbeMiss ProbeKind = iota
	// ProbeFull: the stored window covers the whole lookup.
	ProbeFull
	// ProbePartial: a window with this start is resident but shorter
	// than the lookup; stored micro-ops are served, the rest is decoded.
	ProbePartial
)

// ProbeResult reports what a lookup found.
type ProbeResult struct {
	Kind ProbeKind
	// HitUops is the number of micro-ops served from the cache.
	HitUops int
	// MissUops is the number of micro-ops that must come from the
	// legacy decode path.
	MissUops int
}

// lineRef counts how many windows of one set live in an icache line; the
// per-line slice is kept sorted by set so invalidation scans sets in
// ascending order without re-sorting.
type lineRef struct {
	set  int32
	refs int32
}

// Cache is the micro-op cache structure. It is not safe for concurrent use.
type Cache struct {
	cfg    Config
	policy Policy
	sets   []cset
	// lineIndex maps an icache line address to the sets holding windows
	// from that line (with refcounts), enabling inclusive invalidation.
	lineIndex map[uint64][]lineRef
	clock     uint64

	// Dense slot geometry: every set owns capSlots Resident slots and an
	// idxLen-entry linear-probe index (power of two, <=50% loaded).
	capSlots int
	idxMask  uint32

	// totalResidents counts occupied slots cache-wide (the value behind
	// the uopcache_slot_occupancy gauge).
	totalResidents int

	// viewBuf is the reusable victim-snapshot buffer handed to
	// Policy.Victim; capacity capSlots, so refilling it never allocates.
	viewBuf []Resident
	// invSets / invVictims are scratch buffers for InvalidateLine.
	invSets    []int32
	invVictims []uint64

	// sink receives the structured decision trace; m holds the live
	// uopcache_* metrics. Both are nil unless attached, and every
	// emission site guards with a nil check so the hot path pays nothing
	// when observability is off.
	sink    telemetry.EventSink
	m       *cacheMetrics
	polName string

	Stats Stats
}

// cacheMetrics pre-resolves the registry counters the cache increments at
// exactly the sites the Stats fields are incremented, so the exposed
// uopcache_* counters reconcile with Stats at any instant.
type cacheMetrics struct {
	lookups, fullHits, partialHits, misses     *telemetry.Counter
	uopsRequested, uopsHit, uopsMissed         *telemetry.Counter
	insertions, entriesWritten                 *telemetry.Counter
	bypasses, evictions, invalidations         *telemetry.Counter
	coalesced                                  *telemetry.Counter
	slotOccupancy                              *telemetry.Gauge
	lookupUops, victimCostUops, victimReuseAge *telemetry.Histogram
}

func newCacheMetrics(reg *telemetry.Registry) *cacheMetrics {
	return &cacheMetrics{
		lookups:        reg.Counter("uopcache_lookups_total"),
		fullHits:       reg.Counter("uopcache_full_hits_total"),
		partialHits:    reg.Counter("uopcache_partial_hits_total"),
		misses:         reg.Counter("uopcache_misses_total"),
		uopsRequested:  reg.Counter("uopcache_uops_requested_total"),
		uopsHit:        reg.Counter("uopcache_uops_hit_total"),
		uopsMissed:     reg.Counter("uopcache_uops_missed_total"),
		insertions:     reg.Counter("uopcache_insertions_total"),
		entriesWritten: reg.Counter("uopcache_entries_written_total"),
		bypasses:       reg.Counter("uopcache_bypasses_total"),
		evictions:      reg.Counter("uopcache_evictions_total"),
		invalidations:  reg.Counter("uopcache_invalidations_total"),
		coalesced:      reg.Counter("uopcache_coalesced_misses_total"),
		slotOccupancy:  reg.Gauge("uopcache_slot_occupancy"),
		lookupUops:     reg.Histogram("uopcache_lookup_uops"),
		victimCostUops: reg.Histogram("uopcache_victim_cost_uops"),
		victimReuseAge: reg.Histogram("uopcache_victim_reuse_age_lookups"),
	}
}

// cset is one set's dense storage: capSlots Resident slots (a slot is free
// iff its occupancy bit is clear), an occupancy bitmap, and a linear-probe
// index mapping window keys to slot numbers (entries store slot+1; 0 means
// empty).
type cset struct {
	slots []Resident
	occ   []uint64
	idx   []int32
	used  int
	count int
}

// Stats aggregates micro-op cache activity. Misses are counted in micro-ops
// (the paper's metric) as well as in lookups.
type Stats struct {
	Lookups     uint64
	FullHits    uint64
	PartialHits uint64
	Misses      uint64

	UopsRequested uint64
	UopsHit       uint64
	UopsMissed    uint64

	Insertions     uint64
	EntriesWritten uint64
	Bypasses       uint64
	Evictions      uint64
	Invalidations  uint64
}

// UopMissRate returns missed micro-ops / requested micro-ops.
func (s Stats) UopMissRate() float64 {
	if s.UopsRequested == 0 {
		return 0
	}
	return float64(s.UopsMissed) / float64(s.UopsRequested)
}

// hashKey spreads window start addresses over the probe index (the
// finalizer of MurmurHash3/SplitMix64; full avalanche, so consecutive
// starts do not cluster probes).
func hashKey(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

// New builds a micro-op cache with the given replacement policy; it panics
// on invalid configuration (configurations are static).
func New(cfg Config, policy Policy) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{
		cfg:     cfg,
		policy:  policy,
		polName: policy.Name(),

		lineIndex: make(map[uint64][]lineRef),
	}
	c.capSlots = c.setCapacity()
	idxLen := 8
	for idxLen < 2*c.capSlots {
		idxLen *= 2
	}
	c.idxMask = uint32(idxLen - 1)
	numSets := cfg.Sets()
	occWords := (c.capSlots + 63) / 64
	// One backing array per kind, sliced per set: contiguous, and a single
	// allocation each.
	slotB := make([]Resident, numSets*c.capSlots)
	occB := make([]uint64, numSets*occWords)
	idxB := make([]int32, numSets*idxLen)
	c.sets = make([]cset, numSets)
	for i := range c.sets {
		s := &c.sets[i]
		s.slots = slotB[i*c.capSlots : (i+1)*c.capSlots : (i+1)*c.capSlots]
		s.occ = occB[i*occWords : (i+1)*occWords : (i+1)*occWords]
		s.idx = idxB[i*idxLen : (i+1)*idxLen : (i+1)*idxLen]
		// Mark the bitmap tail beyond capSlots occupied so allocSlot can
		// never hand out an out-of-range slot.
		for b := c.capSlots; b < occWords*64; b++ {
			s.occ[b>>6] |= 1 << (uint(b) & 63)
		}
	}
	c.viewBuf = make([]Resident, 0, c.capSlots)
	policy.Bind(Geometry{Sets: numSets, SlotsPerSet: c.capSlots})
	return c
}

// Geometry returns the dense slot layout (what New passed to Policy.Bind).
func (c *Cache) Geometry() Geometry {
	return Geometry{Sets: c.cfg.Sets(), SlotsPerSet: c.capSlots}
}

// findSlot returns the slot holding key in set s, or -1.
//
//simlint:hotpath
func (c *Cache) findSlot(s *cset, key uint64) int32 {
	i := uint32(hashKey(key)) & c.idxMask
	for {
		v := s.idx[i]
		if v == 0 {
			return -1
		}
		if s.slots[v-1].Key == key {
			return v - 1
		}
		i = (i + 1) & c.idxMask
	}
}

// addIdx records key -> slot in the probe index.
func (c *Cache) addIdx(s *cset, key uint64, slot int32) {
	i := uint32(hashKey(key)) & c.idxMask
	for s.idx[i] != 0 {
		i = (i + 1) & c.idxMask
	}
	s.idx[i] = slot + 1
}

// delIdx removes key from the probe index with backward-shift deletion
// (entries displaced past the hole are moved back onto their probe path, so
// no tombstones accumulate and probes stay short).
func (c *Cache) delIdx(s *cset, key uint64) {
	mask := c.idxMask
	i := uint32(hashKey(key)) & mask
	for {
		v := s.idx[i]
		if v == 0 {
			return // not present (caller bug; tolerated)
		}
		if s.slots[v-1].Key == key {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		e := s.idx[j]
		if e == 0 {
			s.idx[i] = 0
			return
		}
		h := uint32(hashKey(s.slots[e-1].Key)) & mask
		// e can fill the hole at i iff i lies on e's probe path, i.e. the
		// cyclic distance home->j covers the distance i->j.
		if (j-h)&mask >= (j-i)&mask {
			s.idx[i] = e
			i = j
		}
	}
}

// allocSlot returns the lowest free slot in the set (tail bits beyond
// capSlots are pre-marked occupied, so the scan cannot overrun).
func (s *cset) allocSlot() int32 {
	for w, bs := range s.occ {
		if bs != ^uint64(0) {
			return int32(w*64 + bits.TrailingZeros64(^bs))
		}
	}
	panic("uopcache: no free slot in a set below capacity")
}

// SetEventSink attaches (or, with nil, detaches) the structured decision
// trace. With no sink attached the instrumented paths reduce to a nil check.
func (c *Cache) SetEventSink(s telemetry.EventSink) { c.sink = s }

// AttachMetrics registers the cache's live uopcache_* counters and
// histograms in reg. Counters are incremented at exactly the sites the
// Stats fields are, so both views reconcile at any instant.
func (c *Cache) AttachMetrics(reg *telemetry.Registry) {
	if reg == nil {
		c.m = nil
		return
	}
	c.m = newCacheMetrics(reg)
	c.m.slotOccupancy.Set(float64(c.totalResidents))
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Policy returns the replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// SetIndex maps a window start address to its set.
func (c *Cache) SetIndex(start uint64) int { return c.cfg.SetIndex(start) }

// SetIndex maps a window start address to its set for this geometry; offline
// policies use it to partition the lookup trace per set.
func (c Config) SetIndex(start uint64) int {
	// Fold two bit ranges above the low offset bits. Plain bit selection
	// ((start>>4) & mask) severely imbalances sets on structured code
	// layouts (functions laid out at regular strides), inflating conflict
	// misses far beyond the paper's ~11%; XOR-folding is the standard
	// cure and matches how real frontends hash micro-op cache indices.
	return int(((start >> 4) ^ (start >> 11)) & uint64(c.Sets()-1))
}

// Footprint returns a window's storage cost in the geometry's accounting
// unit: whole entries normally, micro-ops under idealized compaction. It is
// the per-window column PreparedTrace precomputes, defined here so the
// formula lives in one place.
func (c Config) Footprint(uops int) int {
	if c.Compaction {
		if uops < 1 {
			return 1
		}
		return uops
	}
	n := (uops + c.UopsPerEntry - 1) / c.UopsPerEntry
	if n < 1 {
		n = 1
	}
	return n
}

// Sig fingerprints the parts of the configuration that determine per-window
// attributes (set index, footprint, entry count). PreparedTrace carries it
// so consumers can detect a geometry mismatch and fall back to recomputing
// attributes instead of trusting stale columns. InsertDelay is deliberately
// excluded: it affects replay timing, not per-window attributes.
func (c Config) Sig() uint64 {
	s := uint64(c.Entries)<<32 | uint64(c.Ways)<<16 | uint64(c.UopsPerEntry)<<1
	if c.Compaction {
		s |= 1
	}
	return hashKey(s)
}

// Prepare builds the shared columnar view of a PW lookup sequence for this
// geometry: precomputed set indices, storage footprints, entry counts and
// the occurrence index every offline replay needs. Build it once per
// (trace, geometry) and hand it to every replay of the same sequence.
func Prepare(cfg Config, pws []trace.PW) *trace.PreparedTrace {
	return trace.Prepare(pws, cfg.Sig(),
		cfg.SetIndex,
		func(p trace.PW) int { return cfg.Footprint(int(p.NumUops)) },
		func(p trace.PW) int { return p.Entries(cfg.UopsPerEntry) },
	)
}

// EvictKey force-evicts the window with the given start address, if
// resident (used by offline policies performing eager evictions). It
// returns true when a window was removed.
func (c *Cache) EvictKey(start uint64) bool {
	set := c.SetIndex(start)
	s := &c.sets[set]
	slot := c.findSlot(s, start)
	if slot < 0 {
		return false
	}
	c.Stats.Evictions++
	c.observeEviction(set, &s.slots[slot], 0, Decision{VictimKey: start, Reason: ReasonForced})
	c.removeResident(set, slot)
	return true
}

// lastTouch is the lookup sequence number a resident was last useful at.
func lastTouch(r *Resident) uint64 {
	if r.LastHitAt > 0 {
		return r.LastHitAt
	}
	return r.InsertedAt
}

// observeEviction mirrors a Stats.Evictions increment into the metrics and
// event trace; call it BEFORE removeResident so victim details are intact.
// incoming is the start address of the window whose insertion forced the
// eviction (zero when eager/offline); d carries the policy's stated reason
// and losing score for attribution.
func (c *Cache) observeEviction(set int, r *Resident, incoming uint64, d Decision) {
	if c.m != nil {
		c.m.evictions.Inc()
		c.m.victimCostUops.Observe(uint64(r.Uops))
		c.m.victimReuseAge.Observe(c.clock - lastTouch(r))
	}
	if c.sink != nil {
		c.sink.Emit(telemetry.Event{
			Seq: c.clock, Kind: telemetry.EventEvict, Set: set, Key: r.Key,
			VictimKey: r.Key, VictimUops: r.Uops, VictimAge: c.clock - lastTouch(r),
			IncomingKey: incoming, Reason: d.Reason, Score: d.Score,
			Policy: c.polName,
		})
	}
}

// noteBypass mirrors a Stats.Bypasses increment (policy bypass, over-large
// window, or cancelled in-flight insertion).
func (c *Cache) noteBypass(set int, pw trace.PW) {
	c.Stats.Bypasses++
	if c.m != nil {
		c.m.bypasses.Inc()
	}
	if c.sink != nil {
		c.sink.Emit(telemetry.Event{
			Seq: c.clock, Kind: telemetry.EventBypass, Set: set, Key: pw.Start,
			Uops: int(pw.NumUops), Policy: c.polName,
		})
	}
}

// NoteCoalescedMiss records a miss merging into an in-flight insertion (no
// Stats field aggregates these; the behaviour driver and the timing
// frontend own insertion scheduling, so they report coalescing here).
func (c *Cache) NoteCoalescedMiss(pw trace.PW) {
	if c.m != nil {
		c.m.coalesced.Inc()
	}
	if c.sink != nil {
		c.sink.Emit(telemetry.Event{
			Seq: c.clock, Kind: telemetry.EventCoalesce, Set: c.SetIndex(pw.Start),
			Key: pw.Start, Uops: int(pw.NumUops), Policy: c.polName,
		})
	}
}

// NotePerfectHit accounts a lookup served by an idealized always-hit cache
// (the timing model's PerfectUopCache switch) so Stats, metrics and the
// event trace stay mutually consistent under the perfect-structure studies.
func (c *Cache) NotePerfectHit(pw trace.PW) {
	c.clock++
	want := int(pw.NumUops)
	c.Stats.Lookups++
	c.Stats.FullHits++
	c.Stats.UopsRequested += uint64(want)
	c.Stats.UopsHit += uint64(want)
	if c.m != nil {
		c.m.lookups.Inc()
		c.m.fullHits.Inc()
		c.m.uopsRequested.Add(uint64(want))
		c.m.uopsHit.Add(uint64(want))
		c.m.lookupUops.Observe(uint64(want))
	}
	if c.sink != nil {
		c.sink.Emit(telemetry.Event{
			Seq: c.clock, Kind: telemetry.EventHit, Set: c.SetIndex(pw.Start),
			Key: pw.Start, Uops: want, HitUops: want, Policy: c.polName,
		})
	}
}

// Lookup probes the cache for pw, updating hit statistics and policy
// recency. It does NOT trigger an insertion; callers (the behaviour wrapper
// or the timing frontend) own insertion scheduling, because that is where
// the asynchrony lives.
//
//simlint:hotpath
func (c *Cache) Lookup(pw trace.PW) ProbeResult {
	return c.lookupAt(pw, c.SetIndex(pw.Start))
}

// lookupAt is Lookup with the window's set index precomputed by the caller
// (the prepared-trace path hands in the column value; Lookup derives it).
//
//simlint:hotpath
func (c *Cache) lookupAt(pw trace.PW, set int) ProbeResult {
	c.clock++
	c.Stats.Lookups++
	want := int(pw.NumUops)
	c.Stats.UopsRequested += uint64(want)
	if c.m != nil {
		c.m.lookups.Inc()
		c.m.uopsRequested.Add(uint64(want))
		c.m.lookupUops.Observe(uint64(want))
	}
	s := &c.sets[set]
	slot := c.findSlot(s, pw.Start)
	if slot < 0 {
		c.Stats.Misses++
		c.Stats.UopsMissed += uint64(want)
		if c.m != nil {
			c.m.misses.Inc()
			c.m.uopsMissed.Add(uint64(want))
		}
		if c.sink != nil {
			c.sink.Emit(telemetry.Event{
				Seq: c.clock, Kind: telemetry.EventMiss, Set: set, Key: pw.Start,
				Uops: want, MissUops: want, Policy: c.polName,
			})
		}
		return ProbeResult{Kind: ProbeMiss, MissUops: want}
	}
	r := &s.slots[slot]
	r.LastHitAt = c.clock
	c.policy.OnHit(set, slot, pw.Start)
	if r.Uops >= want {
		c.Stats.FullHits++
		c.Stats.UopsHit += uint64(want)
		if c.m != nil {
			c.m.fullHits.Inc()
			c.m.uopsHit.Add(uint64(want))
		}
		if c.sink != nil {
			c.sink.Emit(telemetry.Event{
				Seq: c.clock, Kind: telemetry.EventHit, Set: set, Key: pw.Start,
				Uops: want, HitUops: want, Policy: c.polName,
			})
		}
		return ProbeResult{Kind: ProbeFull, HitUops: want}
	}
	c.Stats.PartialHits++
	c.Stats.UopsHit += uint64(r.Uops)
	c.Stats.UopsMissed += uint64(want - r.Uops)
	if c.m != nil {
		c.m.partialHits.Inc()
		c.m.uopsHit.Add(uint64(r.Uops))
		c.m.uopsMissed.Add(uint64(want - r.Uops))
	}
	if c.sink != nil {
		c.sink.Emit(telemetry.Event{
			Seq: c.clock, Kind: telemetry.EventPartial, Set: set, Key: pw.Start,
			Uops: want, HitUops: r.Uops, MissUops: want - r.Uops, Policy: c.polName,
		})
	}
	return ProbeResult{Kind: ProbePartial, HitUops: r.Uops, MissUops: want - r.Uops}
}

// Probe reports what a lookup would find without touching statistics or
// policy state (used by oracles and shadow analyses).
func (c *Cache) Probe(pw trace.PW) ProbeResult {
	want := int(pw.NumUops)
	s := &c.sets[c.SetIndex(pw.Start)]
	slot := c.findSlot(s, pw.Start)
	if slot < 0 {
		return ProbeResult{Kind: ProbeMiss, MissUops: want}
	}
	r := &s.slots[slot]
	if r.Uops >= want {
		return ProbeResult{Kind: ProbeFull, HitUops: want}
	}
	return ProbeResult{Kind: ProbePartial, HitUops: r.Uops, MissUops: want - r.Uops}
}

// InsertOutcome reports what Insert did.
type InsertOutcome uint8

const (
	// Inserted: the window is now resident.
	Inserted InsertOutcome = iota
	// Bypassed: the policy declined to insert.
	Bypassed
	// Redundant: an equal-or-larger window with the same start was
	// already resident; nothing changed.
	Redundant
	// TooLarge: the window needs more entries than a whole set has.
	TooLarge
)

// setCapacity returns a set's capacity in the active accounting unit:
// entries normally, micro-ops under idealized compaction.
func (c *Cache) setCapacity() int {
	if c.cfg.Compaction {
		return c.cfg.Ways * c.cfg.UopsPerEntry
	}
	return c.cfg.Ways
}

// footprint returns a window's cost against setCapacity's unit.
func (c *Cache) footprint(uops int) int { return c.cfg.Footprint(uops) }

// Insert places pw into the cache, consulting the policy for victims as
// needed. If a smaller window with the same start address is resident it is
// replaced (the paper and the AMD patent keep the larger window); an
// equal-or-larger resident makes the insertion redundant.
//
//simlint:hotpath
func (c *Cache) Insert(pw trace.PW) InsertOutcome {
	return c.insertAt(pw, c.SetIndex(pw.Start), c.footprint(int(pw.NumUops)))
}

// insertAt is Insert with the window's set index and storage footprint
// precomputed by the caller (the prepared-trace path hands in the column
// values; Insert derives them).
//
//simlint:hotpath
func (c *Cache) insertAt(pw trace.PW, set, need int) InsertOutcome {
	s := &c.sets[set]
	if need > c.capSlots {
		c.noteBypass(set, pw)
		return TooLarge
	}
	if existing := c.findSlot(s, pw.Start); existing >= 0 {
		if s.slots[existing].Uops >= int(pw.NumUops) {
			return Redundant
		}
		// Grow: the merged larger window replaces the smaller one.
		c.removeResident(set, existing)
	}
	for s.used+need > c.capSlots {
		residents := c.residentsView(set)
		d := c.policy.Victim(set, residents, pw)
		if d.Bypass {
			c.noteBypass(set, pw)
			return Bypassed
		}
		victim := c.findSlot(s, d.VictimKey)
		if victim < 0 {
			//simlint:ignore hotpath cold invariant-violation path; never taken unless a policy is buggy
			panic(fmt.Sprintf("uopcache: policy %s chose non-resident victim %#x in set %d",
				c.policy.Name(), d.VictimKey, set))
		}
		c.Stats.Evictions++
		c.observeEviction(set, &s.slots[victim], pw.Start, d)
		c.removeResident(set, victim)
	}
	var oneLine [1]uint64
	lines := pw.Lines
	if len(lines) == 0 {
		oneLine[0] = trace.LineAddr(pw.Start)
		lines = oneLine[:]
	}
	slot := s.allocSlot()
	r := &s.slots[slot]
	// Reuse the evicted occupant's Lines backing array; it grows at most
	// once per slot over the cache's lifetime.
	stored := r.Lines
	if cap(stored) < len(lines) {
		stored = make([]uint64, 0, len(lines))
	}
	stored = stored[:0]
	for _, line := range lines {
		stored = append(stored, line)
	}
	r.Key = pw.Start
	r.Uops = int(pw.NumUops)
	r.EntriesUsed = need
	r.Lines = stored
	r.InsertedAt = c.clock
	r.LastHitAt = 0
	r.Slot = slot
	s.occ[slot>>6] |= 1 << (uint(slot) & 63)
	s.used += need
	s.count++
	c.totalResidents++
	c.addIdx(s, pw.Start, slot)
	for _, line := range lines {
		c.lineAddRef(line, int32(set))
	}
	c.Stats.Insertions++
	c.Stats.EntriesWritten += uint64(pw.Entries(c.cfg.UopsPerEntry))
	if c.m != nil {
		c.m.insertions.Inc()
		c.m.entriesWritten.Add(uint64(pw.Entries(c.cfg.UopsPerEntry)))
		c.m.slotOccupancy.Set(float64(c.totalResidents))
	}
	if c.sink != nil {
		c.sink.Emit(telemetry.Event{
			Seq: c.clock, Kind: telemetry.EventInsert, Set: set, Key: pw.Start,
			Uops: int(pw.NumUops), Policy: c.polName,
		})
	}
	c.policy.OnInsert(set, slot, pw)
	return Inserted
}

// lineAddRef records one more window of set living in line.
//
//simlint:hotpath
func (c *Cache) lineAddRef(line uint64, set int32) {
	refs := c.lineIndex[line]
	for i := range refs {
		if refs[i].set == set {
			refs[i].refs++
			return
		}
		if refs[i].set > set {
			// Insert before i, keeping the slice sorted by set.
			//simlint:ignore hotpath grows only when a line first gains a set; steady state hits the refcount path above
			refs = append(refs, lineRef{})
			copy(refs[i+1:], refs[i:])
			refs[i] = lineRef{set: set, refs: 1}
			c.lineIndex[line] = refs
			return
		}
	}
	//simlint:ignore hotpath grows only when a line first gains a set; steady state hits the refcount path above
	c.lineIndex[line] = append(refs, lineRef{set: set, refs: 1})
}

// lineDecRef drops one window of set from line, cleaning up empty entries.
//
//simlint:hotpath
func (c *Cache) lineDecRef(line uint64, set int32) {
	refs := c.lineIndex[line]
	for i := range refs {
		if refs[i].set == set {
			refs[i].refs--
			if refs[i].refs == 0 {
				copy(refs[i:], refs[i+1:])
				refs = refs[:len(refs)-1]
				if len(refs) == 0 {
					delete(c.lineIndex, line)
				} else {
					c.lineIndex[line] = refs
				}
			}
			return
		}
	}
}

// removeResident releases the slot, updating set and line bookkeeping and
// notifying the policy.
//
//simlint:hotpath
func (c *Cache) removeResident(set int, slot int32) {
	s := &c.sets[set]
	r := &s.slots[slot]
	key := r.Key
	c.delIdx(s, key)
	s.occ[slot>>6] &^= 1 << (uint(slot) & 63)
	s.used -= r.EntriesUsed
	s.count--
	c.totalResidents--
	for _, line := range r.Lines {
		c.lineDecRef(line, int32(set))
	}
	// Keep the Lines backing array on the vacated slot for reuse; clear
	// EntriesUsed so stale contents cannot be mistaken for a resident.
	r.EntriesUsed = 0
	r.Lines = r.Lines[:0]
	if c.m != nil {
		c.m.slotOccupancy.Set(float64(c.totalResidents))
	}
	c.policy.OnEvict(set, slot, key)
}

// InvalidateLine evicts every window whose code lives in the given icache
// line; the micro-op cache is inclusive in the L1i (Section II-A), so the
// L1i eviction path calls this.
func (c *Cache) InvalidateLine(lineAddr uint64) int {
	refs := c.lineIndex[lineAddr]
	if len(refs) == 0 {
		return 0
	}
	n := 0
	// Snapshot the set list first (already ascending); removal mutates
	// the index. The scratch buffers are reused across calls.
	setsToScan := c.invSets
	if cap(setsToScan) < len(refs) {
		setsToScan = make([]int32, 0, len(refs)*2)
	}
	setsToScan = setsToScan[:0]
	for _, ref := range refs {
		setsToScan = append(setsToScan, ref.set)
	}
	c.invSets = setsToScan
	victims := c.invVictims
	if cap(victims) < c.capSlots {
		victims = make([]uint64, 0, c.capSlots)
	}
	for _, set := range setsToScan {
		s := &c.sets[set]
		victims = victims[:0]
		for i := range s.slots {
			r := &s.slots[i]
			if r.EntriesUsed == 0 {
				continue
			}
			for _, line := range r.Lines {
				if line == lineAddr {
					victims = append(victims, r.Key)
					break
				}
			}
		}
		// Sorted so eviction events replay in the same order every run.
		slices.Sort(victims)
		for _, key := range victims {
			slot := c.findSlot(s, key)
			if c.m != nil || c.sink != nil {
				r := &s.slots[slot]
				if c.m != nil {
					c.m.invalidations.Inc()
				}
				if c.sink != nil {
					c.sink.Emit(telemetry.Event{
						Seq: c.clock, Kind: telemetry.EventInvalidate, Set: int(set), Key: key,
						VictimKey: key, VictimUops: r.Uops, VictimAge: c.clock - lastTouch(r),
						Policy: c.polName,
					})
				}
			}
			c.removeResident(int(set), slot)
			c.Stats.Invalidations++
			n++
		}
	}
	c.invVictims = victims
	return n
}

// residentsView snapshots the residents of a set for the policy, in slot
// (way) order — a deterministic order by construction, since slot assignment
// depends only on the event sequence. The buffer is reused across calls and
// sized to the set capacity at New, so refilling it never allocates.
//
//simlint:hotpath
func (c *Cache) residentsView(set int) []Resident {
	s := &c.sets[set]
	out := c.viewBuf
	if cap(out) < c.capSlots {
		out = make([]Resident, 0, c.capSlots) // unreachable after New; keeps the capacity proof local
	}
	out = out[:0]
	for i := range s.slots {
		if s.slots[i].EntriesUsed != 0 {
			out = append(out, s.slots[i])
		}
	}
	c.viewBuf = out
	return out
}

// Residents returns a snapshot of the residents of a set in slot order (for
// analyses). Unlike the policy-facing view, the snapshot is freshly
// allocated with deep-copied Lines, so callers may retain it.
func (c *Cache) Residents(set int) []Resident {
	s := &c.sets[set]
	out := make([]Resident, 0, s.count)
	for i := range s.slots {
		if s.slots[i].EntriesUsed == 0 {
			continue
		}
		r := s.slots[i]
		r.Lines = append([]uint64(nil), r.Lines...)
		out = append(out, r)
	}
	return out
}

// ResidentFor returns the resident window for a start address, if any. The
// returned copy's Lines are deep-copied, so callers may retain it.
func (c *Cache) ResidentFor(start uint64) (Resident, bool) {
	s := &c.sets[c.SetIndex(start)]
	slot := c.findSlot(s, start)
	if slot < 0 {
		return Resident{}, false
	}
	r := s.slots[slot]
	r.Lines = append([]uint64(nil), r.Lines...)
	return r, true
}

// UsedEntries returns the number of occupied entries in a set.
func (c *Cache) UsedEntries(set int) int { return c.sets[set].used }

// TotalUsedEntries returns the number of occupied entries cache-wide.
func (c *Cache) TotalUsedEntries() int {
	n := 0
	for i := range c.sets {
		n += c.sets[i].used
	}
	return n
}

// ResidentCount returns the number of occupied slots cache-wide (the value
// the uopcache_slot_occupancy gauge exposes).
func (c *Cache) ResidentCount() int { return c.totalResidents }

// Clock returns the lookup sequence number (monotonic).
func (c *Cache) Clock() uint64 { return c.clock }

// Utilization reports how full the occupied entries are: stored micro-ops
// divided by the micro-op capacity of the entries they occupy. Values below
// 1 quantify the internal fragmentation the paper's Section II-C describes
// (a PW's last entry is generally only partially filled); CLASP/compaction
// (Kotra & Kalamatianos) attack exactly this gap.
func (c *Cache) Utilization() float64 {
	var uops, capUops int
	for i := range c.sets {
		for j := range c.sets[i].slots {
			r := &c.sets[i].slots[j]
			if r.EntriesUsed == 0 {
				continue
			}
			uops += r.Uops
			if c.cfg.Compaction {
				capUops += r.EntriesUsed
			} else {
				capUops += r.EntriesUsed * c.cfg.UopsPerEntry
			}
		}
	}
	if capUops == 0 {
		return 0
	}
	return float64(uops) / float64(capUops)
}

// Occupancy returns the fraction of total capacity currently allocated
// (entries normally, micro-ops under compaction).
func (c *Cache) Occupancy() float64 {
	total := c.cfg.Entries
	if c.cfg.Compaction {
		total = c.cfg.Entries * c.cfg.UopsPerEntry
	}
	return float64(c.TotalUsedEntries()) / float64(total)
}

// ResetStats clears the statistics without disturbing contents; behaviour
// runs use it to discard warmup effects.
func (c *Cache) ResetStats() { c.Stats = Stats{} }
