package uopcache

import (
	"uopsim/internal/cache"
	"uopsim/internal/trace"
)

// Behavior is the trace-driven behaviour-mode simulator (the paper's
// "offline behavior simulator", Fig. 6 STEP 3): it feeds a PW lookup
// sequence through the micro-op cache, modelling asynchronous insertion as a
// fixed delay measured in subsequent lookups. All miss-reduction numbers in
// the paper's evaluation are behaviour-mode results.
type Behavior struct {
	C *Cache
	// ICache, when non-nil, models the inclusive L1i: every PW lookup
	// touches its icache line, and L1i evictions invalidate the
	// corresponding micro-op cache windows. Nil models a perfect icache
	// (used by the paper's Fig. 10 ablation).
	ICache *cache.Cache

	delay    uint64
	lookups  uint64
	inflight map[uint64]*pending
	queue    []*pending
}

type pending struct {
	pw  trace.PW
	due uint64
	// set is the window's set index, computed once at scheduling so the
	// completing insertion does not rederive it.
	set int
	// foot is the window's storage footprint when the scheduling lookup
	// came from a prepared trace; -1 means "compute at insertion" (the
	// unprepared path).
	foot int
	// cancelled marks in-flight windows whose insertion an offline
	// policy decided to skip (FLACK's late-insertion safeguard).
	cancelled bool
}

// NewBehavior wraps a cache in a behaviour-mode driver. icache may be nil
// (perfect L1i).
func NewBehavior(c *Cache, icache *cache.Cache) *Behavior {
	b := &Behavior{
		C:        c,
		ICache:   icache,
		delay:    uint64(c.cfg.InsertDelay),
		inflight: make(map[uint64]*pending),
	}
	if icache != nil {
		icache.OnEvict = func(lineAddr uint64) { c.InvalidateLine(lineAddr) }
	}
	return b
}

// Access performs one PW lookup, draining any insertions that became due.
// On a miss or partial hit it schedules the (merged) window's insertion,
// coalescing with an already in-flight window for the same start address.
func (b *Behavior) Access(pw trace.PW) ProbeResult {
	return b.accessAt(pw, b.C.SetIndex(pw.Start), -1)
}

// AccessIndexed is Access for position i of a prepared trace: the set index
// and storage footprint come from the shared columns instead of being
// recomputed per lookup per replay.
//
//simlint:hotpath
func (b *Behavior) AccessIndexed(pt *trace.PreparedTrace, i int) ProbeResult {
	return b.accessAt(pt.At(i), pt.Set(i), pt.Footprint(i))
}

// accessAt is the shared lookup body; foot is the window's precomputed
// footprint, or -1 to compute it at insertion time.
//
//simlint:hotpath
func (b *Behavior) accessAt(pw trace.PW, set, foot int) ProbeResult {
	b.lookups++
	b.drain()
	if b.ICache != nil {
		for _, line := range pw.Lines {
			b.ICache.Access(line)
		}
	}
	res := b.C.lookupAt(pw, set)
	if res.MissUops > 0 {
		b.schedule(pw, set, foot)
	}
	return res
}

// InFlight reports whether an insertion for start is pending.
func (b *Behavior) InFlight(start uint64) bool {
	p, ok := b.inflight[start]
	return ok && !p.cancelled
}

// CancelInFlight drops a pending insertion (FLACK's asynchrony handling:
// when the offline policy decides a window that is still in the decode pipe
// should not be cached, the insertion is bypassed on arrival).
func (b *Behavior) CancelInFlight(start uint64) bool {
	p, ok := b.inflight[start]
	if !ok || p.cancelled {
		return false
	}
	p.cancelled = true
	return true
}

// Flush completes all pending insertions (end of trace).
func (b *Behavior) Flush() {
	for _, p := range b.queue {
		b.complete(p)
	}
	b.queue = b.queue[:0]
}

// Lookups returns the number of accesses performed.
func (b *Behavior) Lookups() uint64 { return b.lookups }

func (b *Behavior) schedule(pw trace.PW, set, foot int) {
	if p, ok := b.inflight[pw.Start]; ok {
		// Coalesce: keep the larger window (new-window formation after
		// a partial hit merges into the in-flight accumulation).
		b.C.NoteCoalescedMiss(pw)
		if pw.NumUops > p.pw.NumUops {
			p.pw = pw
			p.foot = foot
		}
		return
	}
	//simlint:ignore hotpath one pending per coalesced miss, not per lookup; the insertion queue is inherent to the asynchrony model
	p := &pending{pw: pw, due: b.lookups + b.delay, set: set, foot: foot}
	b.inflight[pw.Start] = p
	//simlint:ignore hotpath amortized growth; one queue entry per coalesced miss, reset by Flush
	b.queue = append(b.queue, p)
}

func (b *Behavior) drain() {
	for len(b.queue) > 0 && b.queue[0].due <= b.lookups {
		p := b.queue[0]
		b.queue = b.queue[1:]
		b.complete(p)
	}
}

func (b *Behavior) complete(p *pending) {
	delete(b.inflight, p.pw.Start)
	if p.cancelled {
		b.C.noteBypass(p.set, p.pw)
		return
	}
	need := p.foot
	if need < 0 {
		need = b.C.footprint(int(p.pw.NumUops))
	}
	b.C.insertAt(p.pw, p.set, need)
}

// Run drives a whole PW sequence through the simulator and returns the final
// statistics. The caller's policy state is shared with the cache.
func (b *Behavior) Run(pws []trace.PW) Stats {
	for _, pw := range pws {
		b.Access(pw)
	}
	b.Flush()
	return b.C.Stats
}

// RunPrepared drives a prepared trace through the simulator, reading the
// per-window set and footprint columns instead of recomputing them. It is
// behaviourally identical to Run over pt.PWs().
//
//simlint:hotpath
func (b *Behavior) RunPrepared(pt *trace.PreparedTrace) Stats {
	for i, n := 0, pt.Len(); i < n; i++ {
		b.AccessIndexed(pt, i)
	}
	b.Flush()
	return b.C.Stats
}

// RunWithWarmup drives the sequence like Run but discards statistics
// accumulated over the first warmupFrac of lookups, following the paper's
// practice of measuring after warmup.
func (b *Behavior) RunWithWarmup(pws []trace.PW, warmupFrac float64) Stats {
	if warmupFrac < 0 {
		warmupFrac = 0
	}
	if warmupFrac > 0.9 {
		warmupFrac = 0.9
	}
	cut := int(float64(len(pws)) * warmupFrac)
	for i, pw := range pws {
		if i == cut {
			b.C.ResetStats()
		}
		b.Access(pw)
	}
	b.Flush()
	return b.C.Stats
}
