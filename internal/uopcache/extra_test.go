package uopcache_test

import (
	"testing"
	"testing/quick"

	"uopsim/internal/policy"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

func TestUtilizationAndOccupancy(t *testing.T) {
	c := uopcache.New(uopcache.Config{Entries: 8, Ways: 4, UopsPerEntry: 8}, policy.NewLRU())
	if c.Utilization() != 0 || c.Occupancy() != 0 {
		t.Error("empty cache should have zero utilization/occupancy")
	}
	c.Insert(pw(0x1000, 8)) // 1 entry, fully packed
	if got := c.Utilization(); got != 1.0 {
		t.Errorf("utilization = %v, want 1.0", got)
	}
	c.Insert(pw(0x2000, 9)) // 2 entries, 9/16 packed
	// Total: 17 uops over 3 entries (24 capacity).
	if got := c.Utilization(); got != 17.0/24.0 {
		t.Errorf("utilization = %v, want %v", got, 17.0/24.0)
	}
	if got := c.Occupancy(); got != 3.0/8.0 {
		t.Errorf("occupancy = %v, want 3/8", got)
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := newTiny()
	c.Insert(pw(0x1000, 4))
	c.Lookup(pw(0x1000, 4))
	c.ResetStats()
	if c.Stats.Lookups != 0 {
		t.Error("stats not reset")
	}
	if r := c.Lookup(pw(0x1000, 4)); r.Kind != uopcache.ProbeFull {
		t.Error("contents lost on ResetStats")
	}
}

func TestRunWithWarmup(t *testing.T) {
	cfg := tinyConfig()
	cfg.InsertDelay = 0
	seq := make([]trace.PW, 0, 100)
	for i := 0; i < 100; i++ {
		seq = append(seq, pw(0x1000, 4))
	}
	// With 50% warmup, the cold miss at position 0 is discarded: zero
	// misses measured.
	c := uopcache.New(cfg, policy.NewLRU())
	st := uopcache.NewBehavior(c, nil).RunWithWarmup(seq, 0.5)
	if st.Misses != 0 {
		t.Errorf("warmed-up misses = %d, want 0", st.Misses)
	}
	if st.Lookups != 50 {
		t.Errorf("measured lookups = %d, want 50", st.Lookups)
	}
	// Clamping: negative and >0.9 fractions are tolerated.
	c2 := uopcache.New(cfg, policy.NewLRU())
	if st := uopcache.NewBehavior(c2, nil).RunWithWarmup(seq, -1); st.Lookups != 100 {
		t.Errorf("clamped-low lookups = %d", st.Lookups)
	}
	c3 := uopcache.New(cfg, policy.NewLRU())
	if st := uopcache.NewBehavior(c3, nil).RunWithWarmup(seq, 5); st.Lookups != 10 {
		t.Errorf("clamped-high lookups = %d", st.Lookups)
	}
}

// TestQuickAccountingInvariants drives random operation sequences (derived
// from a quick-checked seed) and verifies the cache's accounting invariants.
func TestQuickAccountingInvariants(t *testing.T) {
	f := func(seed uint64, delayRaw uint8) bool {
		cfg := uopcache.Config{Entries: 32, Ways: 8, UopsPerEntry: 8, InsertDelay: int(delayRaw % 6)}
		c := uopcache.New(cfg, policy.NewLRU())
		b := uopcache.NewBehavior(c, nil)
		state := seed | 1
		for i := 0; i < 3000; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			start := uint64(0x1000 + (state>>33)%300*16)
			uops := 1 + int((state>>17)%24)
			b.Access(pw(start, uops))
		}
		b.Flush()
		st := c.Stats
		if st.UopsHit+st.UopsMissed != st.UopsRequested {
			return false
		}
		if st.Lookups != st.FullHits+st.PartialHits+st.Misses {
			return false
		}
		if c.TotalUsedEntries() > cfg.Entries {
			return false
		}
		u := c.Utilization()
		return u >= 0 && u <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickGrowNeverShrinks: for any pair of same-start windows, the
// resident after both insertions has the larger micro-op count.
func TestQuickGrowNeverShrinks(t *testing.T) {
	f := func(a, b uint8) bool {
		ua := int(a%31) + 1
		ub := int(b%31) + 1
		c := uopcache.New(uopcache.Config{Entries: 8, Ways: 8, UopsPerEntry: 8}, policy.NewLRU())
		c.Insert(pw(0x1000, ua))
		c.Insert(pw(0x1000, ub))
		r, ok := c.ResidentFor(0x1000)
		if !ok {
			return false
		}
		want := ua
		if ub > want {
			want = ub
		}
		return r.Uops == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
