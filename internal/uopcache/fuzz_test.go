// Differential fuzz test for the dense (set, slot) storage rewrite: a
// byte-stream of cache operations is replayed against both the real Cache
// (slot arrays + linear-probe index + line refcounts) and a deliberately
// naive map-based reference model that re-implements the documented
// semantics with Go maps and an inline LRU. The two must agree on every
// per-operation outcome, the exact eviction sequence (set, key, order), the
// final Stats, and the final resident population — across geometries,
// including compaction. Any divergence in slot allocation, probe-index
// deletion, or line bookkeeping shows up as a log mismatch.
package uopcache_test

import (
	"fmt"
	"sort"
	"testing"

	"uopsim/internal/policy"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// fuzzGeometries are the slot layouts the fuzzer exercises: the default-ish
// shape, a short-entry shape, a compacted shape (capacity accounted in
// micro-ops), and a tiny high-pressure shape.
var fuzzGeometries = []uopcache.Config{
	{Entries: 64, Ways: 4, UopsPerEntry: 8},
	{Entries: 32, Ways: 8, UopsPerEntry: 4},
	{Entries: 128, Ways: 8, UopsPerEntry: 8, Compaction: true},
	{Entries: 8, Ways: 4, UopsPerEntry: 8},
}

// evictRecorder wraps a policy and appends every OnEvict to a shared log, so
// the dense cache's eviction sequence (from any removal path: replacement,
// growth, EvictKey, line invalidation) can be compared against the model's.
type evictRecorder struct {
	uopcache.Policy
	log *[]string
}

func (p evictRecorder) OnEvict(set int, slot int32, key uint64) {
	*p.log = append(*p.log, fmt.Sprintf("e %d %x", set, key))
	p.Policy.OnEvict(set, slot, key)
}

// refWin is a resident window in the reference model.
type refWin struct {
	key   uint64
	uops  int
	need  int
	lines []uint64
	stamp uint64 // LRU recency; globally unique, refreshed on hit
}

// refCache is the map-based reference: one map per set, linear victim scans,
// no slot handles, no probe index, no line refcounts — just the semantics.
type refCache struct {
	cfg   uopcache.Config
	cap   int
	sets  []map[uint64]*refWin
	used  []int
	lru   uint64
	stats uopcache.Stats
	log   *[]string
}

func newRefCache(cfg uopcache.Config, log *[]string) *refCache {
	capacity := cfg.Ways
	if cfg.Compaction {
		capacity = cfg.Ways * cfg.UopsPerEntry
	}
	r := &refCache{
		cfg:  cfg,
		cap:  capacity,
		sets: make([]map[uint64]*refWin, cfg.Sets()),
		used: make([]int, cfg.Sets()),
		log:  log,
	}
	for i := range r.sets {
		r.sets[i] = make(map[uint64]*refWin)
	}
	return r
}

func (r *refCache) footprint(uops int) int {
	if r.cfg.Compaction {
		if uops < 1 {
			return 1
		}
		return uops
	}
	n := (uops + r.cfg.UopsPerEntry - 1) / r.cfg.UopsPerEntry
	if n < 1 {
		n = 1
	}
	return n
}

func (r *refCache) remove(set int, w *refWin) {
	delete(r.sets[set], w.key)
	r.used[set] -= w.need
	*r.log = append(*r.log, fmt.Sprintf("e %d %x", set, w.key))
}

func (r *refCache) lookup(pw trace.PW) uopcache.ProbeResult {
	want := int(pw.NumUops)
	r.stats.Lookups++
	r.stats.UopsRequested += uint64(want)
	set := r.cfg.SetIndex(pw.Start)
	w := r.sets[set][pw.Start]
	if w == nil {
		r.stats.Misses++
		r.stats.UopsMissed += uint64(want)
		return uopcache.ProbeResult{Kind: uopcache.ProbeMiss, MissUops: want}
	}
	r.lru++
	w.stamp = r.lru
	if w.uops >= want {
		r.stats.FullHits++
		r.stats.UopsHit += uint64(want)
		return uopcache.ProbeResult{Kind: uopcache.ProbeFull, HitUops: want}
	}
	r.stats.PartialHits++
	r.stats.UopsHit += uint64(w.uops)
	r.stats.UopsMissed += uint64(want - w.uops)
	return uopcache.ProbeResult{Kind: uopcache.ProbePartial, HitUops: w.uops, MissUops: want - w.uops}
}

func (r *refCache) probe(pw trace.PW) uopcache.ProbeResult {
	want := int(pw.NumUops)
	w := r.sets[r.cfg.SetIndex(pw.Start)][pw.Start]
	if w == nil {
		return uopcache.ProbeResult{Kind: uopcache.ProbeMiss, MissUops: want}
	}
	if w.uops >= want {
		return uopcache.ProbeResult{Kind: uopcache.ProbeFull, HitUops: want}
	}
	return uopcache.ProbeResult{Kind: uopcache.ProbePartial, HitUops: w.uops, MissUops: want - w.uops}
}

func (r *refCache) insert(pw trace.PW) uopcache.InsertOutcome {
	set := r.cfg.SetIndex(pw.Start)
	need := r.footprint(int(pw.NumUops))
	if need > r.cap {
		r.stats.Bypasses++
		return uopcache.TooLarge
	}
	if w := r.sets[set][pw.Start]; w != nil {
		if w.uops >= int(pw.NumUops) {
			return uopcache.Redundant
		}
		r.remove(set, w)
	}
	for r.used[set]+need > r.cap {
		// LRU: the resident with the oldest stamp loses (stamps are
		// globally unique, so there are no ties to break).
		var victim *refWin
		for _, w := range r.sets[set] {
			if victim == nil || w.stamp < victim.stamp {
				victim = w
			}
		}
		r.stats.Evictions++
		r.remove(set, victim)
	}
	lines := pw.Lines
	if len(lines) == 0 {
		lines = []uint64{trace.LineAddr(pw.Start)}
	}
	r.lru++
	r.sets[set][pw.Start] = &refWin{
		key: pw.Start, uops: int(pw.NumUops), need: need,
		lines: append([]uint64(nil), lines...), stamp: r.lru,
	}
	r.used[set] += need
	r.stats.Insertions++
	r.stats.EntriesWritten += uint64(pw.Entries(r.cfg.UopsPerEntry))
	return uopcache.Inserted
}

func (r *refCache) evictKey(start uint64) bool {
	set := r.cfg.SetIndex(start)
	w := r.sets[set][start]
	if w == nil {
		return false
	}
	r.stats.Evictions++
	r.remove(set, w)
	return true
}

func (r *refCache) invalidateLine(line uint64) int {
	n := 0
	for set := range r.sets {
		var victims []uint64
		for key, w := range r.sets[set] {
			for _, l := range w.lines {
				if l == line {
					victims = append(victims, key)
					break
				}
			}
		}
		sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
		for _, key := range victims {
			r.remove(set, r.sets[set][key])
			r.stats.Invalidations++
			n++
		}
	}
	return n
}

func (r *refCache) residentCount() int {
	n := 0
	for _, m := range r.sets {
		n += len(m)
	}
	return n
}

// fuzzPW decodes one operation's window: 256 distinct 16-byte-aligned start
// addresses (dense enough that sets collide constantly) and 1..40 micro-ops
// (large enough to exceed a whole set in the smaller geometries, exercising
// TooLarge). Odd extra bytes request a two-line window so line invalidation
// sees multi-line residents.
func fuzzPW(addr, uopsB, extra byte) trace.PW {
	pw := trace.PW{
		Start:   uint64(addr) << 4,
		NumUops: uint16(1 + uopsB%40),
	}
	pw.Bytes = uint16(4 * pw.NumUops)
	if extra&1 != 0 {
		pw.Bytes = 80 // spans two icache lines from any 16-byte-aligned start
		pw.Lines = trace.SpanLines(pw.Start, pw.Bytes)
	}
	return pw
}

// FuzzDenseVsReference replays a fuzzer-chosen operation stream against the
// dense Cache and the map-based reference, requiring identical per-op
// outcomes, eviction sequences, Stats, and final contents.
func FuzzDenseVsReference(f *testing.F) {
	f.Add(uint8(0), []byte{})
	// A lookup/insert mix on one geometry, then streams biased toward each
	// op class so minimization starts near every interesting path.
	f.Add(uint8(0), []byte{0, 1, 5, 0, 3, 1, 5, 0, 0, 1, 5, 0, 3, 2, 9, 1, 6, 1, 0, 0})
	f.Add(uint8(1), []byte{3, 10, 30, 1, 3, 11, 30, 0, 3, 12, 30, 1, 6, 10, 0, 0, 5, 11, 0, 0})
	f.Add(uint8(2), []byte{3, 1, 39, 0, 3, 1, 3, 0, 3, 1, 39, 0, 7, 1, 10, 0})
	f.Add(uint8(3), []byte{3, 200, 20, 1, 3, 201, 20, 1, 3, 202, 20, 1, 3, 203, 20, 1, 6, 200, 0, 0})
	f.Fuzz(func(t *testing.T, geo uint8, data []byte) {
		cfg := fuzzGeometries[int(geo)%len(fuzzGeometries)]

		var denseLog, refLog []string
		c := uopcache.New(cfg, evictRecorder{Policy: policy.NewLRU(), log: &denseLog})
		ref := newRefCache(cfg, &refLog)

		for i := 0; i+4 <= len(data); i += 4 {
			op, addr, uopsB, extra := data[i], data[i+1], data[i+2], data[i+3]
			pw := fuzzPW(addr, uopsB, extra)
			switch op % 8 {
			case 0, 1, 2: // lookup (the common op)
				got, want := c.Lookup(pw), ref.lookup(pw)
				if got != want {
					t.Fatalf("op %d: Lookup(%#x/%d) = %+v, reference %+v", i, pw.Start, pw.NumUops, got, want)
				}
			case 3, 4: // insert
				got, want := c.Insert(pw), ref.insert(pw)
				if got != want {
					t.Fatalf("op %d: Insert(%#x/%d) = %v, reference %v", i, pw.Start, pw.NumUops, got, want)
				}
			case 5: // forced eviction
				got, want := c.EvictKey(pw.Start), ref.evictKey(pw.Start)
				if got != want {
					t.Fatalf("op %d: EvictKey(%#x) = %v, reference %v", i, pw.Start, got, want)
				}
			case 6: // inclusive line invalidation
				line := trace.LineAddr(pw.Start)
				got, want := c.InvalidateLine(line), ref.invalidateLine(line)
				if got != want {
					t.Fatalf("op %d: InvalidateLine(%#x) = %d, reference %d", i, line, got, want)
				}
			case 7: // stateless probe
				got, want := c.Probe(pw), ref.probe(pw)
				if got != want {
					t.Fatalf("op %d: Probe(%#x/%d) = %+v, reference %+v", i, pw.Start, pw.NumUops, got, want)
				}
			}
			if len(denseLog) != len(refLog) {
				t.Fatalf("op %d: eviction log length %d, reference %d\ndense %v\nref   %v",
					i, len(denseLog), len(refLog), denseLog, refLog)
			}
		}

		for i := range denseLog {
			if denseLog[i] != refLog[i] {
				t.Fatalf("eviction %d: dense %q, reference %q", i, denseLog[i], refLog[i])
			}
		}
		if c.Stats != ref.stats {
			t.Fatalf("stats diverged:\ndense %+v\nref   %+v", c.Stats, ref.stats)
		}
		if got, want := c.ResidentCount(), ref.residentCount(); got != want {
			t.Fatalf("resident count %d, reference %d", got, want)
		}
		for set := 0; set < cfg.Sets(); set++ {
			for _, r := range c.Residents(set) {
				w := ref.sets[set][r.Key]
				if w == nil || w.uops != r.Uops || w.need != r.EntriesUsed {
					t.Fatalf("set %d resident %#x: dense uops=%d need=%d, reference %+v",
						set, r.Key, r.Uops, r.EntriesUsed, w)
				}
			}
			if len(c.Residents(set)) != len(ref.sets[set]) {
				t.Fatalf("set %d population %d, reference %d", set, len(c.Residents(set)), len(ref.sets[set]))
			}
		}
	})
}
